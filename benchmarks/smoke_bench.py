"""CI smoke benchmark: tiny fig4c/fig4d configs vs a checked-in baseline.

Runs in seconds, not minutes: one unlabeled-census config (Figure 4(c):
``clq3-unlb`` on a small PA graph — node-driven territory, on both the
dict and CSR backends) and one labeled config (Figure 4(d): ``clq3`` —
pattern-driven territory).  Each measured time is compared against
``benchmarks/results/smoke_baseline.json``; anything more than
``--threshold`` times slower (default 3x, absorbing CI hardware jitter)
fails the job.  Refresh the baseline with ``--write-baseline`` after an
intentional perf change.

Usage::

    PYTHONPATH=src python benchmarks/smoke_bench.py
    PYTHONPATH=src python benchmarks/smoke_bench.py --write-baseline
"""

import argparse
import json
import os
import sys
import time

from repro.census import ALGORITHMS, parallel_census
from repro.datasets.workloads import pa_graph
from repro.graph.csr import freeze
from repro.lang.catalog import standard_catalog

BASELINE = os.path.join(os.path.dirname(__file__), "results", "smoke_baseline.json")
N = 400
K = 2
REPS = 3


def _best(fn):
    best = None
    for _ in range(REPS):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def run_configs():
    """Measure every smoke config; returns ``{config_name: seconds}``."""
    catalog = standard_catalog()
    times = {}

    # Figure 4(c): unselective unlabeled triangle, node-driven wins.
    unlabeled = pa_graph(N, labeled=False)
    clq3_unlb = catalog.get("clq3-unlb")
    for backend, graph in (("dict", unlabeled), ("csr", freeze(unlabeled))):
        for name in ("nd-pvot", "nd-diff"):
            fn = ALGORITHMS[name]
            times[f"fig4c/{name}/{backend}"] = _best(lambda: fn(graph, clq3_unlb, K))
    times["fig4c/nd-pvot/csr-4w"] = _best(lambda: parallel_census(
        freeze(unlabeled), clq3_unlb, K, algorithm="nd-pvot", workers=4,
        executor="serial",
    ))

    # Figure 4(d): selective labeled triangle, pattern-driven wins.
    labeled = pa_graph(N, labeled=True)
    clq3 = catalog.get("clq3")
    for name in ("pt-opt", "nd-pvot"):
        fn = ALGORITHMS[name]
        times[f"fig4d/{name}/dict"] = _best(lambda: fn(labeled, clq3, K))
    return times


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE)
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="fail when current > threshold * baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current times as the new baseline")
    args = parser.parse_args(argv)

    times = run_configs()
    width = max(len(name) for name in times)
    for name, seconds in sorted(times.items()):
        print(f"{name.ljust(width)}  {seconds * 1000:9.2f} ms")

    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump({"reps": REPS, "times": times}, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)["times"]
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --write-baseline first",
              file=sys.stderr)
        return 2

    regressions = []
    for name, seconds in sorted(times.items()):
        base = baseline.get(name)
        if base is None:
            print(f"note: {name} has no baseline entry (new config)")
            continue
        ratio = seconds / base
        flag = "REGRESSION" if ratio > args.threshold else "ok"
        print(f"{name.ljust(width)}  {ratio:5.2f}x baseline  {flag}")
        if ratio > args.threshold:
            regressions.append((name, ratio))

    if regressions:
        print(f"\n{len(regressions)} config(s) regressed more than "
              f"{args.threshold}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print("\nsmoke bench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
