"""Ablation: incremental census maintenance vs recompute-per-update.

Not a paper figure — it quantifies the evolving-network extension: a
stream of edge insertions maintained incrementally (seeded delta
matching + region-bounded count refresh) against recomputing the full
census after every update.
"""

import random

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census import census
from repro.census.incremental import IncrementalCensus
from repro.graph.generators import preferential_attachment
from repro.matching.pattern import Pattern

from conftest import run_once

GRAPH_SIZE = 500
NUM_UPDATES = 40


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def edge_stream(graph, count, seed=3):
    rng = random.Random(seed)
    stream = []
    seen = set()
    while len(stream) < count:
        u, v = rng.sample(range(graph.num_nodes), 2)
        key = (min(u, v), max(u, v))
        if key not in seen and not graph.has_edge(u, v):
            seen.add(key)
            stream.append((u, v))
    return stream


def test_ablation_incremental(benchmark, record_figure):
    pattern = triangle()
    base = preferential_attachment(GRAPH_SIZE, m=2, seed=11)
    stream = edge_stream(base, NUM_UPDATES)
    sweep = Sweep("ablation: incremental vs recompute per update", x_label="strategy")
    work = {}

    def run_incremental():
        g = base.copy()
        inc = IncrementalCensus(g, pattern, 1)
        for u, v in stream:
            inc.add_edge(u, v)
        work["refreshed"] = inc.refreshed_nodes
        return inc.snapshot()

    def run_recompute():
        g = base.copy()
        last = None
        for u, v in stream:
            g.add_edge(u, v)
            last = census(g, pattern, 1, algorithm="nd-pvot")
        return last

    def run():
        incremental = sweep.run("time", "incremental", run_incremental)
        recomputed = sweep.run("time", "recompute", run_recompute)
        assert incremental == recomputed
        return sweep

    run_once(benchmark, run)
    lines = [
        render_series(sweep),
        "",
        f"{NUM_UPDATES} updates; incremental refreshed {work['refreshed']} "
        f"focal nodes total (naive: {NUM_UPDATES * GRAPH_SIZE})",
    ]
    record_figure("ablation_incremental", "\n".join(lines))

    # Shape: maintaining beats recomputing by a wide margin.
    assert sweep.value("time", "incremental") < 0.5 * sweep.value("time", "recompute")
    assert work["refreshed"] < NUM_UPDATES * GRAPH_SIZE / 5
