"""Shared machinery for the figure-reproduction benchmarks.

Every ``test_fig4*`` benchmark reproduces one panel of the paper's
Figure 4: it runs the full parameter sweep once inside the
pytest-benchmark harness, prints the series table (the textual analogue
of the figure), writes it to ``benchmarks/results/``, and asserts the
*shape* claims the paper makes (who wins, roughly by how much, where
behavior changes).  Absolute times are machine- and Python-specific;
shapes are what the reproduction guarantees.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_figure():
    """Write one figure's rendered sweep to benchmarks/results/<name>.txt."""

    def _record(name, text):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"\n{text}")
        return path

    return _record


def run_once(benchmark, fn):
    """Run a sweep exactly once under the pytest-benchmark harness."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
