"""Storage engine benchmark: buffer pool size vs census runtime.

Not a paper figure — it characterizes the substrate substitution
(DESIGN.md §2): the disk-resident store pays buffer-pool misses the way
the paper's Neo4j-backed prototype did, and a larger pool converges to
in-memory behavior.
"""

import os
import tempfile

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census import nd_pvot_census
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog
from repro.storage import DiskGraph

from conftest import run_once

GRAPH_SIZE = 600
POOL_SIZES = (8, 64, 512)


def test_storage_buffer_pool(benchmark, record_figure):
    mem = pa_graph(GRAPH_SIZE, labeled=True)
    pattern = standard_catalog().get("clq3")
    path = os.path.join(tempfile.mkdtemp(), "bench.db")
    DiskGraph.create(path, mem).close()
    sweep = Sweep("storage: census by buffer pool size", x_label="pages")
    hit_rates = {}
    expected = nd_pvot_census(mem, pattern, 2)

    def run():
        for pages in POOL_SIZES:
            # A small decoded-record cache keeps the buffer pool on the
            # critical path (the object cache would otherwise absorb
            # every repeat access).
            disk = DiskGraph.open(path, cache_pages=pages, record_cache=32)
            counts = sweep.run("disk", pages, nd_pvot_census, disk, pattern, 2)
            assert counts == expected
            stats = disk.cache_stats()
            hit_rates[pages] = stats["hits"] / max(1, stats["hits"] + stats["misses"])
        sweep.run("memory", "-", nd_pvot_census, mem, pattern, 2)
        return sweep

    run_once(benchmark, run)
    lines = [render_series(sweep), "", "buffer pool hit rates:"]
    for pages, rate in sorted(hit_rates.items()):
        lines.append(f"  {pages} pages: {rate:.3f}")
    record_figure("storage_buffer_pool", "\n".join(lines))

    # A larger pool never has a worse hit rate.
    rates = [hit_rates[p] for p in POOL_SIZES]
    assert rates == sorted(rates)
