"""Ablation: the paper's future-work extensions (Section VII).

- Top-k census: the threshold algorithm should return the exact top-k
  while exactly evaluating only a fraction of the nodes.
- Approximate census: a modest match sample should estimate the census
  of the highest-count ego within a small relative error, much faster
  than the exact pattern-driven pass at scale.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census import census
from repro.census.approx import approximate_census
from repro.census.topk import census_topk
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog

from conftest import run_once

GRAPH_SIZE = 1500
K_HOPS = 2
TOP_K = 10


def test_ablation_topk(benchmark, record_figure):
    # A selective (labeled) pattern: anchors are sparse, so the
    # upper-bound diffusion is cheap and the threshold fires early.
    graph = pa_graph(4000, labeled=True)
    pattern = standard_catalog().get("clq3")
    sweep = Sweep("ablation: top-k vs full census", x_label="method")
    stats = {}

    def run():
        top = sweep.run("time", "topk", census_topk, graph, pattern, K_HOPS, TOP_K,
                        None, None, "cn", None, stats)
        full = sweep.run("time", "full (nd-pvot)", census, graph, pattern, K_HOPS,
                         None, None, "nd-pvot")
        want_counts = sorted(full.values(), reverse=True)[:TOP_K]
        assert [c for _n, c in top] == want_counts
        assert all(full[n] == c for n, c in top)
        return sweep

    run_once(benchmark, run)
    lines = [
        render_series(sweep),
        "",
        f"exact evaluations: {stats['exact_evaluations']} / {graph.num_nodes} nodes",
    ]
    record_figure("ablation_topk", "\n".join(lines))

    # Shape: the threshold algorithm exactly evaluates only a fraction
    # of the nodes and beats the equivalent full node-driven census.
    assert stats["exact_evaluations"] < graph.num_nodes / 2
    assert sweep.value("time", "topk") < sweep.value("time", "full (nd-pvot)")


def test_ablation_approx(benchmark, record_figure):
    graph = pa_graph(GRAPH_SIZE, labeled=False)
    pattern = standard_catalog().get("clq3-unlb")
    sweep = Sweep("ablation: approximate census", x_label="sample")
    errors = {}

    exact = census(graph, pattern, K_HOPS, algorithm="nd-pvot")
    hub = max(exact, key=exact.get)

    def run():
        for sample in (50, 200, 800):
            approx = sweep.run("time", sample, approximate_census, graph, pattern,
                               K_HOPS, sample)
            errors[sample] = abs(approx[hub] - exact[hub]) / max(1, exact[hub])
        return sweep

    run_once(benchmark, run)
    lines = [render_series(sweep), "", f"relative error at the top ego (exact={exact[hub]}):"]
    for sample, err in sorted(errors.items()):
        lines.append(f"  sample={sample}: {err:.3f}")
    record_figure("ablation_approx", "\n".join(lines))

    # Shape: more samples, less error at the hub; the largest sample is
    # within 25% relative error.
    assert errors[800] <= errors[50] + 1e-9
    assert errors[800] < 0.25
