"""Figure 4(d): pattern census on labeled graphs, varying size.

Paper setup: ``COUNTP(clq3, SUBGRAPH(ID, 2))`` on labeled PA graphs of
200K–1M nodes.  The labeled triangle is selective (few matches), so
pattern-driven algorithms beat node-driven ones, PT-OPT beats PT-RND
(best-first order matters), and PT-OPT wins overall.

Scaled to 1K–2K nodes with k=3 (larger neighborhoods stand in for the
paper's much larger graphs).  Two cost metrics are reported:

- wall-clock, on which we assert the family ordering (pattern-driven
  beats node-driven for the selective pattern);
- adjacency-entry visits (the disk-I/O proxy that dominates on the
  paper's disk-resident substrate), on which we assert PT-OPT's
  mechanism: simultaneous traversal + clustering visit far fewer edges
  than PT-BAS's independent per-match BFS runs, and best-first order
  pops no more nodes than random order.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census import ALGORITHMS
from repro.census.pt_bas import pt_bas_census
from repro.census.pt_opt import PTOptions, pt_opt_census
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog

from conftest import run_once

SIZES = (1000, 2000)
K = 3
SERIES = ("nd-pvot", "nd-diff", "pt-bas", "pt-opt", "pt-rnd")


def test_fig4d_sweep(benchmark, record_figure):
    pattern = standard_catalog().get("clq3")
    sweep = Sweep("fig4d: census, labeled clq3, k=3", x_label="nodes")
    metrics = {}

    def run():
        for n in SIZES:
            graph = pa_graph(n, labeled=True)
            results = {}
            for name in SERIES:
                results[name] = sweep.run(name, n, ALGORITHMS[name], graph, pattern, K)
            assert all(r == results["nd-pvot"] for r in results.values())

            bas_stats = {}
            pt_bas_census(graph, pattern, K, collect_stats=bas_stats)
            opt_stats, rnd_stats = {}, {}
            pt_opt_census(graph, pattern, K, options=PTOptions(stats=opt_stats))
            pt_opt_census(graph, pattern, K,
                          options=PTOptions(order="random", stats=rnd_stats))
            metrics[n] = {
                "pt-bas edge visits": bas_stats["edge_visits"],
                "pt-opt edge visits": opt_stats["edge_visits"],
                "pt-opt pops (best-first)": opt_stats["pops"],
                "pt-opt pops (random)": rnd_stats["pops"],
            }
        return sweep

    run_once(benchmark, run)
    lines = [render_series(sweep), ""]
    for n, m in sorted(metrics.items()):
        lines.append(f"n={n}: " + ", ".join(f"{k}={v}" for k, v in m.items()))
    record_figure("fig4d", "\n".join(lines))

    largest = SIZES[-1]
    # Shape: for the selective labeled pattern, the pattern-driven
    # family beats the node-driven family (inverse of Figure 4(c)).
    best_pt = min(sweep.value(s, largest) for s in ("pt-bas", "pt-opt", "pt-rnd"))
    best_nd = min(sweep.value(s, largest) for s in ("nd-pvot", "nd-diff"))
    assert best_pt < best_nd
    # PT-OPT itself is competitive with the node-driven family (its
    # decisive win is on the I/O metrics below and on the disk-resident
    # substrate; in-memory wall clock carries interpreter noise).
    assert sweep.value("pt-opt", largest) < 1.5 * best_nd
    # Shape: PT-OPT's shared traversal visits far fewer adjacency
    # entries than PT-BAS's independent BFS runs.
    for n in SIZES:
        assert metrics[n]["pt-opt edge visits"] < 0.5 * metrics[n]["pt-bas edge visits"]
    # Shape: best-first ordering does no more queue pops than random.
    for n in SIZES:
        assert (metrics[n]["pt-opt pops (best-first)"]
                <= metrics[n]["pt-opt pops (random)"])


def test_fig4d_disk_resident(benchmark, record_figure):
    """Figure 4(d) on the disk-resident substrate.

    In pure Python the in-memory wall clock tracks interpreted
    operation counts, which flatters PT-BAS's lean BFS loops.  The
    paper's prototype ran on a disk-based engine where adjacency access
    dominates — and on our paged store with a small buffer pool the
    paper's ordering is restored in wall-clock terms: PT-OPT's 6x
    fewer adjacency visits beat PT-BAS outright.
    """
    import os
    import tempfile

    from repro.storage import DiskGraph

    mem = pa_graph(1000, labeled=True)
    pattern = standard_catalog().get("clq3")
    path = os.path.join(tempfile.mkdtemp(), "fig4d.db")
    DiskGraph.create(path, mem).close()
    sweep = Sweep("fig4d-disk: labeled clq3 on the disk store, k=3", x_label="algorithm")

    def run():
        for name, fn in (("pt-bas", ALGORITHMS["pt-bas"]),
                         ("pt-opt", ALGORITHMS["pt-opt"]),
                         ("nd-pvot", ALGORITHMS["nd-pvot"])):
            disk = DiskGraph.open(path, cache_pages=32, record_cache=64)
            sweep.run("time", name, fn, disk, pattern, K)
        return sweep

    run_once(benchmark, run)
    record_figure("fig4d_disk", render_series(sweep))

    # Shape: with I/O on the critical path, PT-OPT beats PT-BAS —
    # the paper's Figure 4(d) ordering.
    assert sweep.value("time", "pt-opt") < sweep.value("time", "pt-bas")
    assert sweep.value("time", "pt-opt") < sweep.value("time", "nd-pvot")
