"""Ablation: the O(1) bucket queue vs a binary heap.

Section IV-B.3 replaces the log-time heap with an array of score
buckets because scores are small bounded integers.  This microbenchmark
replays a PT-OPT-like workload (interleaved pushes, decreases and pops
over a small score range) on both structures.
"""

import heapq
import random

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census.bucket_queue import BucketQueue

from conftest import run_once

NUM_ITEMS = 30_000
MAX_SCORE = 40


def make_workload(seed=3):
    rng = random.Random(seed)
    ops = []
    for item in range(NUM_ITEMS):
        ops.append(("push", item, rng.randrange(MAX_SCORE)))
        if rng.random() < 0.4:
            victim = rng.randrange(item + 1)
            ops.append(("decrease", victim, rng.randrange(MAX_SCORE)))
    return ops


def drive_bucket(ops):
    q = BucketQueue(MAX_SCORE)
    popped = 0
    for op, item, score in ops:
        q.push(item, score)
    while q:
        q.pop()
        popped += 1
    return popped


def drive_heap(ops):
    heap = []
    best = {}
    popped = 0
    for op, item, score in ops:
        current = best.get(item)
        if current is not None and current <= score:
            continue
        best[item] = score
        heapq.heappush(heap, (score, item))
    while heap:
        score, item = heapq.heappop(heap)
        if best.get(item) == score:
            del best[item]
            popped += 1
    return popped


def test_ablation_queues(benchmark, record_figure):
    ops = make_workload()
    sweep = Sweep("ablation: bucket queue vs heap", x_label="structure")

    def run():
        n_bucket = sweep.run("time", "bucket", drive_bucket, ops)
        n_heap = sweep.run("time", "heap", drive_heap, ops)
        assert n_bucket == n_heap  # same live items popped
        return sweep

    run_once(benchmark, run)
    record_figure("ablation_queues", render_series(sweep))
    # The bucket queue must be at least competitive with the heap.
    assert sweep.value("time", "bucket") < 1.5 * sweep.value("time", "heap")
