"""Figure 4(h): DBLP link prediction precision@50 / precision@600.

Paper setup: co-authorship from SIGMOD/VLDB/ICDE 2001–2005 predicts
collaborations of 2006–2010; author pairs are scored by the number of
nodes / edges / triangles in their common 1/2/3-hop neighborhoods (nine
census measures) plus Jaccard and random baselines.  Paper findings:
the census structure measures dominate — the best (common nodes within
2 hops on real DBLP) is roughly twice Jaccard — and the random
predictor has zero precision.

This runs on the synthetic DBLP stand-in (see
``repro.datasets.dblp``).  Asserted shape: (1) the random baseline is
the weakest at both cutoffs, (2) the best census measure beats Jaccard
at P@50, and (3) the strongest measure is a low-radius (1–2 hop)
common-neighborhood count.  On synthetic data the radius-1 node count
can edge out the radius-2 one (the generator's closure signal is more
directly 1-hop than real DBLP's); EXPERIMENTS.md discusses the
deviation.
"""

from repro.analysis.linkprediction import LinkPredictionExperiment
from repro.bench.harness import Sweep
from repro.datasets.dblp import synthetic_dblp

from conftest import run_once

KS = (50, 600)


def test_fig4h_precision(benchmark, record_figure):
    # A dense training era (many candidate pairs) and a lighter test
    # era (few realized pairs) keep the random baseline near the base
    # rate, as in the paper's much larger pair universe.
    data = synthetic_dblp(num_authors=500, num_areas=10, papers_per_year=150,
                          authors_per_paper=(2, 3), closure_bias=2.0,
                          region_bias=0.5, bridge_fraction=0.5,
                          test_papers_per_year=60, seed=11)
    candidates = data.candidate_pairs(max_distance=3)
    experiment = LinkPredictionExperiment(data.train_graph, data.test_pairs, candidates)

    def run():
        return experiment.report(ks=KS)

    rows = run_once(benchmark, run)

    precisions = {name: p for name, p in rows}
    lines = [
        "fig4h: link prediction on synthetic DBLP",
        f"  train: {data.train_graph.num_nodes} authors, "
        f"{data.train_graph.num_edges} edges; "
        f"candidates={len(candidates)}, new pairs={len(data.test_pairs)}",
        f"  {'measure':16s}  " + "  ".join(f"P@{k:<4d}" for k in KS),
    ]
    for name, p in rows:
        lines.append(f"  {name:16s}  " + "  ".join(f"{p[k]:.3f}" for k in KS))
    record_figure("fig4h", "\n".join(lines))

    census_measures = {
        name: p for name, p in precisions.items() if name not in ("jaccard", "random")
    }
    # Shape: random has far less precision than the best census
    # measures (the paper's random predictor scores zero on its much
    # larger pair universe; ours is bounded below by the candidate
    # pool's base rate).
    best50 = max(p[50] for p in census_measures.values())
    best600 = max(p[600] for p in census_measures.values())
    assert precisions["random"][50] < 0.5 * best50
    assert precisions["random"][600] < 0.8 * best600
    # Shape: the best census measure beats Jaccard at P@50.
    assert best50 > 1.2 * precisions["jaccard"][50]
    # Shape: a low-radius common-neighborhood count is the strongest.
    winner = max(census_measures, key=lambda name: census_measures[name][50])
    assert winner in ("node@1hop", "node@2hop", "edge@1hop", "edge@2hop"), winner


def test_fig4h_runtime(benchmark, record_figure):
    """Section V-B runtime comparison: node-driven vs pattern-driven
    pairwise evaluation, from the cheap (nodes in 1 hop) to the heavy
    (triangles in 3 hops) configuration."""
    from repro.census.pairwise import pairwise_census

    data = synthetic_dblp(num_authors=300, num_areas=8, papers_per_year=80,
                          authors_per_paper=(2, 3), seed=7)
    graph = data.train_graph
    pairs = data.candidate_pairs(max_distance=2)[:400]
    sweep = Sweep("fig4h-runtime: pairwise census strategies", x_label="config")

    def run():
        from repro.analysis.linkprediction import structure_pattern

        for structure, radius in (("node", 1), ("edge", 2), ("triangle", 3)):
            pattern = structure_pattern(structure)
            label = f"{structure}@{radius}"
            nd = sweep.run("ND", label, pairwise_census, graph, pattern, radius,
                           pairs, "intersection", None, "nd")
            pt = sweep.run("PT", label, pairwise_census, graph, pattern, radius,
                           pairs, "intersection", None, "pt")
            assert nd == pt
        return sweep

    run_once(benchmark, run)
    from repro.bench.reporting import render_series

    record_figure("fig4h_runtime", render_series(sweep))
    # Both strategies must at least complete and agree; relative speed
    # at this scale is reported, not asserted (the paper saw 0.9x-3.4x).
    assert len(sweep.measurements) == 6
