"""Ablation: shared-traversal multi-pattern census.

Workloads that census several patterns over the same egos (the
link-prediction measures, the graphlet orbits) repeat the per-ego BFS
once per pattern when run naively; ``multi_census`` hoists the BFS.
The asserted shape: the combined pass beats running ND-PVOT per
pattern, with identical counts.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census import census
from repro.census.multi import multi_census
from repro.datasets.workloads import pa_graph
from repro.matching.pattern import Pattern

from conftest import run_once

GRAPH_SIZE = 2000
K = 2


def make_patterns():
    """Selective labeled edge patterns: few matches each, so the
    per-ego BFS — the cost the shared traversal removes — dominates."""
    patterns = []
    for a, b in (("A", "B"), ("B", "C"), ("C", "D"), ("A", "C")):
        p = Pattern(f"pair_{a}{b}")
        p.add_node("X", label=a)
        p.add_node("Y", label=b)
        p.add_edge("X", "Y")
        patterns.append(p)
    return patterns


def test_ablation_multi_census(benchmark, record_figure):
    graph = pa_graph(GRAPH_SIZE, labeled=True)
    patterns = make_patterns()
    sweep = Sweep("ablation: multi-pattern census", x_label="strategy")

    def run_combined():
        return multi_census(graph, patterns, K)

    def run_separate():
        return {
            p.name: census(graph, p, K, algorithm="nd-pvot") for p in patterns
        }

    def run():
        combined = sweep.run("time", "shared traversal", run_combined)
        separate = sweep.run("time", "one pass per pattern", run_separate)
        assert combined == separate
        return sweep

    run_once(benchmark, run)
    record_figure("ablation_multi_census", render_series(sweep))

    assert sweep.value("time", "shared traversal") < sweep.value(
        "time", "one pass per pattern"
    )
