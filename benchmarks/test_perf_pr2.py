"""PR 2 perf tracking: CSR snapshots + parallel census execution.

Measures the fig4c unlabeled-census workload (``COUNTP(clq3-unlb,
SUBGRAPH(ID, 2))`` on a PA graph) along the two axes this PR adds:

- **backend** — dict ``Graph`` vs its frozen CSR snapshot, both
  end-to-end (matching + counting) and census-phase only (counting with
  a pre-found match list, the part the CSR bit-parallel path and the
  parallel executor accelerate);
- **workers** — 1 vs 4 focal chunks.  Per-chunk wall-times are measured
  inside the chunks themselves, so the critical path (max chunk time)
  is the wall-time a >=4-core machine realizes; on a single-CPU host
  the chunks merely run back-to-back and total wall-time is unchanged.

Emits ``benchmarks/results/BENCH_pr2.json`` (checked in) so the perf
trajectory is comparable across PRs, and asserts the headline claims:
identical counts everywhere, census-phase CSR >=2x over dict, and
>=1.5x critical-path scaling from 1 to 4 workers on at least one
algorithm.
"""

import os

from repro.bench.harness import Sweep, time_call
from repro.bench.reporting import machine_info, render_series, sweep_payload, write_json
from repro.census import ALGORITHMS, parallel_census
from repro.datasets.workloads import pa_graph
from repro.graph.csr import freeze
from repro.lang.catalog import standard_catalog
from repro.matching import find_matches
from repro.obs import ObsContext

from conftest import RESULTS_DIR, run_once

N = 800
K = 2
PATTERN = "clq3-unlb"
CENSUS_SERIES = ("nd-diff", "nd-pvot", "pt-bas", "pt-opt")
SCALING_SERIES = ("nd-diff", "nd-pvot", "pt-bas")
REPS = 5
WORKERS = 4


def _best(fn, reps=REPS):
    """Min-of-``reps`` wall-time and the last result."""
    best = None
    result = None
    for _ in range(reps):
        seconds, result = time_call(fn)
        if best is None or seconds < best:
            best = seconds
    return best, result


def _chunk_seconds(graph, pattern, algorithm, matches, workers):
    """Per-chunk wall-times of one parallel run (serial executor: each
    chunk timed alone, free of single-CPU timesharing contention)."""
    with ObsContext() as obs:
        counts = parallel_census(
            graph, pattern, K, algorithm=algorithm, workers=workers,
            executor="serial", matches=matches,
        )
    hist = obs.registry.histograms()["census.parallel.chunk_seconds"]
    return counts, hist.max, hist.sum


def test_perf_pr2(benchmark, record_figure):
    pattern = standard_catalog().get(PATTERN)
    dict_graph = pa_graph(N, labeled=False)
    csr_graph = freeze(dict_graph)

    backends = Sweep("pr2: dict vs CSR backend", x_label="phase")
    scaling = Sweep("pr2: 1 vs 4 workers", x_label="algorithm")
    counts = {}
    scaling_rows = []

    def run():
        for name in CENSUS_SERIES:
            fn = ALGORITHMS[name]
            for backend, graph in (("dict", dict_graph), ("csr", csr_graph)):
                seconds, result = _best(lambda: fn(graph, pattern, K))
                backends.record(f"{name}/{backend}", "end-to-end", seconds)
                counts[(name, backend, "end-to-end")] = result

                matches = find_matches(graph, pattern, method="cn", distinct=True)
                seconds, result = _best(lambda: fn(graph, pattern, K, matches=matches))
                backends.record(f"{name}/{backend}", "census-phase", seconds)
                counts[(name, backend, "census-phase")] = result

        for name in SCALING_SERIES:
            matches = find_matches(csr_graph, pattern, method="cn", distinct=True)
            c1, critical_1w, _total = _chunk_seconds(
                csr_graph, pattern, name, matches, workers=1
            )
            c4, critical_4w, total_4w = _chunk_seconds(
                csr_graph, pattern, name, matches, workers=WORKERS
            )
            assert c1 == c4, f"{name}: 1-worker and {WORKERS}-worker counts differ"
            counts[(name, "csr", "workers")] = c4
            scaling.record(f"{name}/1w", name, critical_1w)
            scaling.record(f"{name}/{WORKERS}w-critical-path", name, critical_4w)
            scaling_rows.append({
                "algorithm": name,
                "workers": WORKERS,
                "serial_seconds": critical_1w,
                "chunk_total_seconds": total_4w,
                "critical_path_seconds": critical_4w,
                "scaling_1_to_4": critical_1w / critical_4w,
            })

    run_once(benchmark, run)

    # Identical counts everywhere: backends, phases, and worker counts.
    reference = counts[(CENSUS_SERIES[0], "dict", "end-to-end")]
    for key, result in counts.items():
        assert result == reference, f"counts diverge at {key}"

    speedups = {}
    for name in CENSUS_SERIES:
        speedups[name] = {
            phase: (backends.value(f"{name}/dict", phase)
                    / backends.value(f"{name}/csr", phase))
            for phase in ("end-to-end", "census-phase")
        }

    payload = {
        "bench": "BENCH_pr2",
        "workload": {"figure": "fig4c", "pattern": PATTERN, "nodes": N, "k": K,
                     "reps": REPS},
        "machine": machine_info(),
        "backends": sweep_payload(backends),
        "backend_speedup_dict_over_csr": speedups,
        "workers": sweep_payload(scaling),
        "workers_scaling": scaling_rows,
        "notes": (
            "census-phase = counting with a pre-found match list (the phase "
            "the CSR bit-parallel path accelerates and the parallel executor "
            "chunks). critical_path_seconds = max per-chunk wall-time, i.e. "
            "the wall-time realized with one core per chunk; chunks are "
            "timed back-to-back so single-CPU CI hosts measure it cleanly."
        ),
    }
    write_json(os.path.join(RESULTS_DIR, "BENCH_pr2.json"), payload)
    record_figure("pr2_backends", render_series(backends))
    record_figure("pr2_workers", render_series(scaling))

    # Headline claims (the PR's acceptance criteria).
    assert speedups["nd-pvot"]["census-phase"] >= 2.0, speedups
    best_scaling = max(row["scaling_1_to_4"] for row in scaling_rows)
    assert best_scaling >= 1.5, scaling_rows
