"""PR 5 perf tracking: telemetry overhead on the serving path.

Every served request now runs inside a ``RequestObsContext`` (span tree
+ metrics tee) regardless of sampling, so the cost that matters is the
*always-on* bookkeeping plus whatever head sampling adds.  This bench
drives ``CensusServer.handle_query`` in process — no HTTP, no socket
noise — with caching and coalescing defeated so every request executes
the census, and compares three configurations:

- ``off``      — ``trace_sample_rate=0``, slow capture disabled (the
  pre-PR serving path plus the ambient request context);
- ``sampled``  — ``trace_sample_rate=0.01``, the recommended production
  setting (1 in 100 traces retained in the ring buffer);
- ``full``     — ``trace_sample_rate=1.0`` plus a 0ms slow threshold,
  the debugging configuration (every trace retained, every request
  renders an EXPLAIN ANALYZE plan), reported for context only.

Headline claim (the PR's acceptance bar): 1% sampling costs **at most
5%** median per-request latency over sampling off.  Medians are taken
per repeat; the best (min) median of ``REPS`` repeats per config is
compared, which filters scheduler noise the same way the other benches
do.  Emits ``benchmarks/results/BENCH_pr5.json`` (checked in) so the
overhead is tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr5_telemetry.py
"""

import json
import os
import statistics
import sys
import time

from repro.bench.reporting import machine_info, write_json
from repro.datasets.workloads import pa_graph
from repro.server import CensusServer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
N = 200
QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
         "FROM nodes ORDER BY c DESC, ID ASC LIMIT 5")
WARMUP = 5
REQUESTS = 60
REPS = 3
THRESHOLD = 0.05  # sampled-vs-off overhead that fails the bench

CONFIGS = {
    "off": {"trace_sample_rate": 0.0},
    "sampled": {"trace_sample_rate": 0.01},
    "full": {"trace_sample_rate": 1.0, "slow_query_ms": 0.0},
}


def drive(server, requests):
    """Per-request seconds for ``requests`` sequential queries."""
    body = json.dumps({"query": QUERY}).encode()
    samples = []
    for _ in range(requests):
        start = time.perf_counter()
        result = server.handle_query({}, body, "application/json")
        samples.append(time.perf_counter() - start)
        if result[0] != 200:
            raise RuntimeError(f"bench query failed: {result[0]}")
    return samples


def measure(graph, **telemetry_kwargs):
    """Best-of-``REPS`` median per-request seconds for one config."""
    medians = []
    for _ in range(REPS):
        server = CensusServer(graph, port=0, cache=False, **telemetry_kwargs)
        try:
            drive(server, WARMUP)
            medians.append(statistics.median(drive(server, REQUESTS)))
        finally:
            server.httpd.server_close()
    return min(medians), medians


def main():
    graph = pa_graph(N, labeled=False)
    results = {}
    for name, kwargs in CONFIGS.items():
        best, medians = measure(graph, **kwargs)
        results[name] = {"config": kwargs, "median_seconds": best,
                         "all_medians": medians}
        print(f"{name.ljust(8)}  {best * 1000:8.3f} ms/request "
              f"(medians: {[f'{m * 1000:.3f}' for m in medians]})")

    sampled_overhead = (results["sampled"]["median_seconds"]
                        / results["off"]["median_seconds"]) - 1.0
    full_overhead = (results["full"]["median_seconds"]
                     / results["off"]["median_seconds"]) - 1.0
    print(f"\nsampled (1%) overhead vs off: {sampled_overhead * 100:+.2f}%")
    print(f"full (100% + slow capture) overhead vs off: "
          f"{full_overhead * 100:+.2f}%")

    payload = {
        "bench": "BENCH_pr5",
        "workload": {"nodes": N, "query": QUERY, "requests": REQUESTS,
                     "warmup": WARMUP, "reps": REPS, "cache": False},
        "machine": machine_info(),
        "configs": results,
        "sampled_overhead_vs_off": sampled_overhead,
        "full_overhead_vs_off": full_overhead,
        "threshold": THRESHOLD,
        "notes": (
            "median per-request seconds of in-process handle_query calls "
            "(no HTTP); best median of REPS repeats per config. 'off' "
            "still runs the ambient RequestObsContext — the comparison "
            "isolates what head sampling adds, which is the knob the "
            "--trace-sample-rate flag exposes."
        ),
    }
    write_json(os.path.join(RESULTS_DIR, "BENCH_pr5.json"), payload)
    print(f"results written to {RESULTS_DIR}/BENCH_pr5.json")

    if sampled_overhead > THRESHOLD:
        print(f"FAIL: 1% sampling costs {sampled_overhead * 100:.2f}% "
              f"(> {THRESHOLD * 100:.0f}%)", file=sys.stderr)
        return 1
    print("telemetry overhead bench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
