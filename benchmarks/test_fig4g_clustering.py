"""Figure 4(g): effect of pattern-match clustering on PT-OPT.

Paper setup: labeled 1M-node graph, clq3, k=2; NO-CLUST vs RND-CLUST vs
the center-feature K-means OPT-CLUST, sweeping the number of clusters
100..600.  Findings: OPT-CLUST wins; too few clusters hurt (too many
matches per traversal means redundant distance computations) and too
many clusters forfeit sharing.

Scaled to a 4K-node graph with the cluster count swept as a fraction of
the match count.  Asserted shape (on traversal work, which is what
clustering saves): K-means clustering at the middle setting beats both
no clustering and random clustering at the same setting.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census.pt_opt import PTOptions, pt_opt_census
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog

from conftest import run_once

GRAPH_SIZE = 4000
K = 2
#: cluster count as a divisor of the match count (paper: matches/4).
DIVISORS = (2, 4, 8)


def test_fig4g_sweep(benchmark, record_figure):
    graph = pa_graph(GRAPH_SIZE, labeled=True)
    pattern = standard_catalog().get("clq3")
    from repro.census.base import CensusRequest, prepare_matches

    num_matches = len(prepare_matches(CensusRequest(graph, pattern, K)))
    sweep = Sweep("fig4g: PT-OPT by clustering strategy", x_label="clusters")
    work = {}

    def run():
        for strategy, series in (("none", "NO-CLUST"), ("random", "RND-CLUST"),
                                 ("kmeans", "OPT-CLUST")):
            for divisor in DIVISORS:
                clusters = max(1, num_matches // divisor)
                stats = {}
                opts = PTOptions(clustering=strategy, num_clusters=clusters, stats=stats)
                label = clusters if strategy != "none" else clusters
                sweep.run(series, label, pt_opt_census, graph, pattern, K, None, None,
                          "cn", opts)
                work[(series, divisor)] = stats["pops"] + stats["relaxations"]
        return sweep

    run_once(benchmark, run)
    lines = [render_series(sweep), "", f"matches: {num_matches}",
             "traversal work (pops + relaxations):"]
    for (series, divisor), w in sorted(work.items()):
        lines.append(f"  {series} matches/{divisor}: {w}")
    record_figure("fig4g", "\n".join(lines))

    middle = DIVISORS[1]
    # Shape: K-means clustering reduces work vs no clustering.
    assert work[("OPT-CLUST", middle)] < work[("NO-CLUST", middle)]
    # Shape: K-means clustering beats random grouping.
    assert work[("OPT-CLUST", middle)] <= work[("RND-CLUST", middle)]
