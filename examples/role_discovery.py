"""Structural role identification from census profiles.

The paper's abstract lists role identification among the motivating
applications.  Here, nodes of a hierarchy-shaped network (a core hub,
mid-tier brokers, leaves) are embedded by their graphlet-orbit census
profiles and clustered into roles — no positional information used,
only local pattern counts.

Run:  python examples/role_discovery.py
"""

from collections import Counter

from repro.analysis.roles import extract_roles, role_summary
from repro.graph.graph import Graph


def corporate_network(branches=6, teams_per_branch=3, team_size=4):
    """HQ -> branch managers -> team leads -> team members, plus intra-
    team collaboration edges (cliques at the bottom)."""
    g = Graph()
    hq = "HQ"
    g.add_node(hq)
    node_id = 0
    for b in range(branches):
        manager = f"mgr{b}"
        g.add_edge(hq, manager)
        for t in range(teams_per_branch):
            lead = f"lead{b}.{t}"
            g.add_edge(manager, lead)
            members = []
            for _ in range(team_size):
                member = f"m{node_id}"
                node_id += 1
                g.add_edge(lead, member)
                members.append(member)
            for i, x in enumerate(members):  # intra-team clique
                for y in members[i + 1:]:
                    g.add_edge(x, y)
    return g


def main():
    g = corporate_network()
    print(f"network: {g.num_nodes} nodes / {g.num_edges} edges")

    roles = extract_roles(g, num_roles=4, seed=3)
    summary = role_summary(g, roles)
    print("\ndiscovered roles:")
    for role, info in sorted(summary.items()):
        print(f"  role {role}: {info['size']} nodes, "
              f"mean degree {info['mean_degree']:.1f}")

    for label, probe in [("HQ", "HQ"), ("a branch manager", "mgr0"),
                         ("a team lead", "lead0.0"), ("a team member", "m0")]:
        print(f"  {label:17s} -> role {roles[probe]}")

    # Sanity: team members (clique dwellers) dominate one role.
    member_roles = Counter(roles[n] for n in g.nodes() if str(n).startswith("m")
                           and not str(n).startswith("mgr"))
    print(f"\nteam-member role distribution: {dict(member_roles)}")


if __name__ == "__main__":
    main()
