"""Network comparison via graphlet orbit census.

Section I cites Przulj's graphlet degree distributions as prior local
motif counting; each orbit count is one COUNTSP census query here.
This example profiles nodes of three different random-graph families
and shows that the graphlet-degree-distribution distance groups graphs
by family.

Run:  python examples/graphlet_comparison.py
"""

from repro.analysis.graphlets import gdd_distance, graphlet_profiles
from repro.graph.generators import (
    erdos_renyi,
    preferential_attachment,
    watts_strogatz,
)


def main():
    graphs = {
        "pa-1": preferential_attachment(150, m=3, seed=1),
        "pa-2": preferential_attachment(150, m=3, seed=2),
        "er-1": erdos_renyi(150, 450, seed=3),
        "er-2": erdos_renyi(150, 450, seed=4),
        "ring": watts_strogatz(150, k=6, beta=0.05, seed=5),
    }

    hub_graph = graphs["pa-1"]
    profiles = graphlet_profiles(hub_graph)
    hub = max(hub_graph.nodes(), key=hub_graph.degree)
    leaf = min(hub_graph.nodes(), key=hub_graph.degree)
    print("orbit profiles (wedge-end, wedge-center, triangle):")
    print(f"  hub  node {hub}: {profiles[hub]}")
    print(f"  leaf node {leaf}: {profiles[leaf]}\n")

    names = list(graphs)
    print("pairwise GDD distance:")
    header = "        " + "  ".join(f"{n:>6s}" for n in names)
    print(header)
    distances = {}
    for a in names:
        row = [f"{a:>6s}"]
        for b in names:
            d = distances.get((b, a))
            if d is None:
                d = gdd_distance(graphs[a], graphs[b])
                distances[(a, b)] = d
            row.append(f"{d:6.3f}")
        print("  ".join(row))

    same = (distances[("pa-1", "pa-2")] + distances[("er-1", "er-2")]) / 2
    cross = distances[("pa-1", "er-1")]
    print(f"\nmean within-family distance:  {same:.3f}")
    print(f"PA vs ER distance:            {cross:.3f}")


if __name__ == "__main__":
    main()
