"""Targeted marketing: couples who are friends with couples.

Reproduces the Figure 1(a) application.  The network has two edge
types — ``rel='married'`` and ``rel='friend'``.  A travel agency wants
the married couples whose combined 2-hop network contains the most
*other* couples: a pairwise census of the couple pattern over
SUBGRAPH-UNION neighborhoods, expressed with edge-attribute predicates.

Run:  python examples/targeted_marketing.py
"""

import random

from repro.census import pairwise_census
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern
from repro.matching.predicates import Comparison, Const, EdgeAttr


def build_social_graph(num_people=120, num_couples=30, num_friendships=220, seed=3):
    rng = random.Random(seed)
    g = Graph()
    for person in range(num_people):
        g.add_node(person)
    couples = []
    singles = list(range(num_people))
    rng.shuffle(singles)
    for _ in range(num_couples):
        a, b = singles.pop(), singles.pop()
        g.add_edge(a, b, rel="married")
        couples.append((a, b))
    placed = 0
    while placed < num_friendships:
        a, b = rng.sample(range(num_people), 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b, rel="friend")
            placed += 1
    return g, couples


def couple_pattern():
    p = Pattern("couple")
    p.add_edge("A", "B")
    p.add_predicate(Comparison(EdgeAttr("A", "B", "rel"), "=", Const("married")))
    return p


def main():
    g, couples = build_social_graph()
    print(f"social graph: {g.num_nodes} people, {g.num_edges} ties, {len(couples)} couples\n")

    counts = pairwise_census(
        g, couple_pattern(), 2, pairs=couples, mode="union", algorithm="nd"
    )
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])

    print("couples with the most couples in their combined 2-hop network:")
    for (a, b), c in ranked[:8]:
        # Subtract the couple itself, which always lies in its own union.
        print(f"  couple ({a:3d}, {b:3d}): {c - 1} other couples in reach")


if __name__ == "__main__":
    main()
