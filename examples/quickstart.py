"""Quickstart: the pattern census language end to end.

Builds a small attributed graph, registers patterns with the paper's
textual syntax, and runs the four example queries of Table I.

Run:  python examples/quickstart.py
"""

from repro import Graph, QueryEngine


def build_graph():
    """A small labeled social graph with a couple of triangles."""
    g = Graph()
    people = {
        1: "A", 2: "A", 3: "B", 4: "B", 5: "A", 6: "C", 7: "A", 8: "B",
    }
    for node, label in people.items():
        g.add_node(node, label=label)
    edges = [
        (1, 2), (2, 3), (1, 3),          # triangle 1-2-3
        (3, 4), (4, 5), (3, 5),          # triangle 3-4-5
        (5, 6), (6, 7), (7, 8), (8, 5),  # square 5-6-7-8
    ]
    for u, v in edges:
        g.add_edge(u, v)
    return g


def main():
    g = build_graph()
    engine = QueryEngine(g)

    print("=== Table I row 1: neighborhood size (single-node census) ===")
    t = engine.execute(
        "SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes ORDER BY ID"
    )
    print(t, "\n")

    print("=== Custom pattern: triangles within 1 hop ===")
    engine.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
    t = engine.execute(
        "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) AS triangles FROM nodes "
        "ORDER BY triangles DESC, ID LIMIT 5"
    )
    print(t, "\n")

    print("=== Table I row 2: common edges of node pairs ===")
    t = engine.execute(
        "SELECT n1.ID, n2.ID, "
        "COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) AS common "
        "FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID "
        "ORDER BY common DESC LIMIT 5"
    )
    print(t, "\n")

    print("=== Table I row 3: squares within 2 hops ===")
    t = engine.execute("SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes ORDER BY ID")
    print(t, "\n")

    print("=== Table I row 4: coordinator triads (COUNTSP + subpattern) ===")
    gd = Graph(directed=True)
    for node in range(6):
        gd.add_node(node, label="X")
    for u, v in [(0, 1), (1, 2), (3, 1), (1, 4), (0, 2)]:
        gd.add_edge(u, v)
    triads = QueryEngine(gd)
    results = triads.execute_script(
        """
        PATTERN triad {
            ?A->?B; ?B->?C; ?A!->?C;
            [?A.LABEL=?B.LABEL];
            [?B.LABEL=?C.LABEL];
            SUBPATTERN coordinator {?B;}
        }
        SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes ORDER BY ID;
        """
    )
    print(results[0])


if __name__ == "__main__":
    main()
