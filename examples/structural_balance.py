"""Structural balance census on a signed network.

Reproduces the social-balance application of Section I: triangles with
an odd number of negative ties are unstable; a node's ego-network
instability is the count (and fraction) of unstable triangles in its
k-hop neighborhood.

Run:  python examples/structural_balance.py
"""

from repro.analysis.balance import balance_instability, unstable_triangle_census
from repro.graph.generators import signed_network


def main():
    g = signed_network(150, m=3, negative_fraction=0.3, seed=5)
    negatives = sum(1 for u, v in g.edges() if g.edge_attr(u, v, "sign") == -1)
    print(
        f"signed network: {g.num_nodes} nodes, {g.num_edges} edges "
        f"({negatives} negative)\n"
    )

    for k in (1, 2):
        unstable = unstable_triangle_census(g, k)
        fraction = balance_instability(g, k)
        worst = sorted(unstable.items(), key=lambda kv: -kv[1])[:5]
        print(f"k = {k}:")
        print("  most unstable egos: " + ", ".join(f"{n}({c})" for n, c in worst))
        avg = sum(fraction.values()) / len(fraction)
        print(f"  mean instability fraction: {avg:.3f}\n")


if __name__ == "__main__":
    main()
