"""Incremental census maintenance on a streaming graph.

Maintains per-ego triangle counts while collaboration edges stream in,
touching only the affected region of the graph on each update — the
"evolving network" setting the paper's authors pursued in follow-up
work.  The maintained counts are compared against a full recomputation
at the end.

Run:  python examples/incremental_monitoring.py
"""

import random
import time

from repro.census import census
from repro.census.incremental import IncrementalCensus
from repro.graph.generators import preferential_attachment
from repro.matching.pattern import Pattern


def main():
    g = preferential_attachment(400, m=2, seed=8)
    tri = Pattern("tri")
    tri.add_edge("A", "B")
    tri.add_edge("B", "C")
    tri.add_edge("A", "C")

    inc = IncrementalCensus(g, tri, k=1)
    print(f"initial graph: {g.num_nodes} nodes / {g.num_edges} edges")
    print(f"initial top ego: {max(inc.snapshot().items(), key=lambda t: t[1])}\n")

    rng = random.Random(3)
    stream = []
    while len(stream) < 60:
        u, v = rng.sample(range(g.num_nodes), 2)
        if not g.has_edge(u, v):
            stream.append((u, v))

    t0 = time.perf_counter()
    for i, (u, v) in enumerate(stream, 1):
        inc.add_edge(u, v)
        if i % 20 == 0:
            node, count = max(inc.snapshot().items(), key=lambda t: t[1])
            print(f"after {i:3d} insertions: top ego = node {node} ({count} triangles), "
                  f"{inc.refreshed_nodes} node refreshes so far")
    stream_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    full = census(g, tri, 1, algorithm="nd-pvot")
    full_time = time.perf_counter() - t0

    assert inc.snapshot() == full
    print("\nmaintained counts match full recomputation")
    print(f"60 incremental updates: {stream_time:.2f}s "
          f"(one full recomputation: {full_time:.2f}s)")
    print(f"total refreshed focal nodes: {inc.refreshed_nodes} "
          f"of {60 * g.num_nodes} naive")


if __name__ == "__main__":
    main()
