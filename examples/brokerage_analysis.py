"""Brokerage role census on an organizational transaction network.

Reproduces the Figure 1(c) application: in a directed network where
every node belongs to an organization, the middle node of an open
directed triad A -> B -> C plays one of five Gould–Fernandez roles
depending on which nodes share an organization.  Each role is one
census query (pattern + predicates + subpattern, counted at k=0).

Run:  python examples/brokerage_analysis.py
"""

from repro.analysis.brokerage import BROKERAGE_ROLES, brokerage_scores
from repro.graph.generators import organizational_network


def main():
    g = organizational_network(200, num_orgs=3, m=3, seed=21)
    print(f"transaction network: {g.num_nodes} nodes, {g.num_edges} directed edges, 3 orgs\n")

    scores = {role: brokerage_scores(g, role) for role in BROKERAGE_ROLES}

    print("top 5 brokers per role:")
    for role, counts in scores.items():
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
        cells = ", ".join(f"{n}({c})" for n, c in top if c)
        print(f"  {role:15s} {cells or '-'}")

    print("\nrole mix of the overall top broker:")
    totals = {}
    for counts in scores.values():
        for n, c in counts.items():
            totals[n] = totals.get(n, 0) + c
    best = max(totals, key=totals.get)
    print(f"  node {best} (org={g.node_attr(best, 'org')}):")
    for role in BROKERAGE_ROLES:
        print(f"    {role:15s} {scores[role][best]}")


if __name__ == "__main__":
    main()
