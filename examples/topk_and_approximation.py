"""The paper's future-work extensions: top-k and approximate census.

Section VII of the paper proposes (a) top-k evaluation to find the egos
with the highest census counts without a full census, and (b)
approximation for even larger graphs.  Both are implemented here:

- ``census_topk`` — a threshold algorithm over anchor-mass upper bounds
  that exactly evaluates only a fraction of the nodes;
- ``approximate_census`` — an unbiased match-sampling estimator with
  per-node standard errors.

Run:  python examples/topk_and_approximation.py
"""

import time

from repro.census import census
from repro.census.approx import approximate_census, sample_size_for_error
from repro.census.topk import census_topk
from repro.graph.generators import preferential_attachment
from repro.matching.pattern import Pattern


def main():
    g = preferential_attachment(1200, m=4, seed=2)
    tri = Pattern("tri")
    tri.add_edge("A", "B")
    tri.add_edge("B", "C")
    tri.add_edge("A", "C")

    print(f"graph: {g.num_nodes} nodes / {g.num_edges} edges\n")

    t0 = time.perf_counter()
    full = census(g, tri, 2, algorithm="nd-pvot")
    full_time = time.perf_counter() - t0

    stats = {}
    t0 = time.perf_counter()
    top = census_topk(g, tri, 2, 10, collect_stats=stats)
    topk_time = time.perf_counter() - t0

    print("top 10 egos by triangles within 2 hops:")
    for node, count in top:
        print(f"  node {node}: {count}")
    print(
        f"\nfull census: {full_time:.2f}s; top-k: {topk_time:.2f}s "
        f"({stats['exact_evaluations']} of {g.num_nodes} nodes evaluated exactly)"
    )

    hub = top[0][0]
    total_matches = int(round(sum(full.values()) / 1))  # just for display
    sample = sample_size_for_error(total_matches, target_stderr=50)
    estimates = approximate_census(g, tri, 2, sample_size=300, with_stderr=True)
    est, err = estimates[hub]
    print(
        f"\napproximate census at the top ego (sample=300 matches): "
        f"{est:.0f} +/- {err:.0f} (exact {full[hub]})"
    )


if __name__ == "__main__":
    main()
