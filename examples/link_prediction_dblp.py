"""The paper's Section V-B experiment on a synthetic DBLP stand-in.

Trains on collaborations from 2001–2005 and predicts 2006–2010 pairs by
counting nodes, edges, and triangles in the pairs' common 1/2/3-hop
neighborhoods, then reports precision@K for each of the nine measures
and the Jaccard / random baselines (the content of Figure 4(h)).

Run:  python examples/link_prediction_dblp.py
"""

from repro.analysis.linkprediction import LinkPredictionExperiment
from repro.datasets.dblp import synthetic_dblp


def main():
    data = synthetic_dblp(num_authors=250, papers_per_year=50, seed=11)
    g = data.train_graph
    print(
        f"train graph: {g.num_nodes} authors, {g.num_edges} collaborations "
        f"({data.train_years[0]}-{data.train_years[1]})"
    )
    print(
        f"test era: {len(data.test_pairs)} new collaborating pairs "
        f"({data.test_years[0]}-{data.test_years[1]})"
    )

    candidates = data.candidate_pairs(max_distance=3)
    print(f"candidate pairs (within 3 hops, unconnected): {len(candidates)}\n")

    experiment = LinkPredictionExperiment(g, data.test_pairs, candidates)
    ks = (50, 600)
    print(f"{'measure':16s}  " + "  ".join(f"P@{k:<4d}" for k in ks))
    print("-" * 38)
    for name, precisions in experiment.report(ks=ks):
        cells = "  ".join(f"{precisions[k]:.3f}" for k in ks)
        print(f"{name:16s}  {cells}")


if __name__ == "__main__":
    main()
