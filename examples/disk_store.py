"""Running census queries on the disk-resident storage engine.

The paper's prototype runs on a disk-based graph engine; this example
bulk-loads a preferential-attachment graph into the paged store, reopens
it cold, and runs the same census query against memory and disk —
identical results, plus buffer-pool statistics.

Run:  python examples/disk_store.py
"""

import os
import tempfile
import time

from repro import QueryEngine
from repro.graph.generators import labeled_preferential_attachment
from repro.storage import DiskGraph


def main():
    mem = labeled_preferential_attachment(2000, m=5, seed=13)
    path = os.path.join(tempfile.mkdtemp(), "graph.db")

    t0 = time.perf_counter()
    store = DiskGraph.create(path, mem, cache_pages=128)
    store.close()
    print(f"bulk-loaded {mem.num_nodes} nodes / {mem.num_edges} edges "
          f"in {time.perf_counter() - t0:.2f}s -> {os.path.getsize(path) / 1024:.0f} KiB")

    disk = DiskGraph.open(path, cache_pages=128)
    query = "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) AS c FROM nodes ORDER BY c DESC LIMIT 5"

    t0 = time.perf_counter()
    mem_rows = QueryEngine(mem).execute(query)
    mem_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    disk_rows = QueryEngine(disk).execute(query)
    disk_time = time.perf_counter() - t0

    assert mem_rows == disk_rows
    print(f"\ntop-5 labeled-triangle egos (identical on both backends):\n{mem_rows}\n")
    print(f"in-memory: {mem_time:.2f}s   disk-resident: {disk_time:.2f}s")
    print(f"buffer pool: {disk.cache_stats()}")


if __name__ == "__main__":
    main()
