"""Node classification from census features (Figure 1(b)).

Two demonstrations of the paper's node-classification application:

1. **Research-field inference** — a collaboration network with planted
   communities; hidden field labels are recovered by iterated census
   votes over classified alters.
2. **Family risk scoring** — the paper's smoker example: for each
   child, count relatives within 3 hops who smoke *and whose parent
   also smokes*, as a single COUNTP query over a directed family
   network with edge-type predicates.

Run:  python examples/node_classification.py
"""

import random

from repro.analysis.classification import (
    classification_accuracy,
    collective_classify,
)
from repro.census import census
from repro.graph.generators import stochastic_block_model
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern
from repro.matching.predicates import Attr, Comparison, Const, EdgeAttr


def field_inference():
    print("=== research field inference ===")
    g = stochastic_block_model([40, 40, 40], p_in=0.25, p_out=0.01, seed=9)
    truth = {}
    rng = random.Random(10)
    hidden = 0
    for n in g.nodes():
        field = ("databases", "systems", "theory")[g.node_attr(n, "block")]
        truth[n] = field
        if rng.random() < 0.4:
            g.set_node_attr(n, "cls", None)
            hidden += 1
        else:
            g.set_node_attr(n, "cls", field)
    predictions = collective_classify(g, ["databases", "systems", "theory"])
    acc = classification_accuracy(predictions, truth)
    print(f"hidden labels: {hidden}; classified: {len(predictions)}; "
          f"accuracy: {acc:.3f}\n")


def build_family_network(families=25, seed=4):
    """Married couples with children; some family lines smoke."""
    rng = random.Random(seed)
    g = Graph(directed=True)
    node = 0
    children = []
    for _ in range(families):
        smoking_family = rng.random() < 0.4
        pa, ma = node, node + 1
        node += 2
        for person in (pa, ma):
            g.add_node(person, smoker=smoking_family and rng.random() < 0.8)
        g.add_edge(pa, ma, rel="married")
        g.add_edge(ma, pa, rel="married")
        for _ in range(rng.randint(1, 3)):
            child = node
            node += 1
            g.add_node(child, smoker=smoking_family and rng.random() < 0.5)
            g.add_edge(pa, child, rel="parent")
            g.add_edge(ma, child, rel="parent")
            children.append(child)
    # Marriages ACROSS families connect the network.
    rng.shuffle(children)
    for a, b in zip(children[0::2], children[1::2]):
        if not g.has_edge(a, b):
            g.add_edge(a, b, rel="married")
            g.add_edge(b, a, rel="married")
    return g, children


def smoker_pattern():
    """A smoker ?B whose parent ?C also smokes (Figure 1(b))."""
    p = Pattern("smoker_with_smoking_parent")
    p.add_edge("C", "B", directed=True)
    p.add_predicate(Comparison(EdgeAttr("C", "B", "rel"), "=", Const("parent")))
    p.add_predicate(Comparison(Attr("B", "smoker"), "=", Const(True)))
    p.add_predicate(Comparison(Attr("C", "smoker"), "=", Const(True)))
    return p


def family_risk():
    print("=== family smoking-risk census ===")
    g, children = build_family_network()
    counts = census(g, smoker_pattern(), 3, focal_nodes=children,
                    algorithm="nd-pvot")
    at_risk = sorted(counts.items(), key=lambda t: -t[1])[:5]
    print("children with the most smoker-with-smoking-parent relatives "
          "within 3 hops:")
    for child, score in at_risk:
        print(f"  child {child}: risk score {score} "
              f"(smoker: {g.node_attr(child, 'smoker')})")
    smokers = [c for c in children if g.node_attr(c, "smoker")]
    if smokers and len(smokers) < len(children):
        avg_s = sum(counts[c] for c in smokers) / len(smokers)
        rest = [c for c in children if not g.node_attr(c, "smoker")]
        avg_n = sum(counts[c] for c in rest) / len(rest)
        print(f"\nmean risk score: smokers {avg_s:.2f} vs non-smokers {avg_n:.2f}")


if __name__ == "__main__":
    field_inference()
    family_risk()
