"""Setuptools shim.

Kept alongside pyproject.toml so that editable installs work on
environments whose setuptools predates bundled wheel support
(``pip install -e . --no-use-pep517`` falls back to this file).
"""

from setuptools import setup

setup()
